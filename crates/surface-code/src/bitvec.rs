//! A compact, fixed-length bit vector used for error states and syndromes.
//!
//! The simulator manipulates Pauli-error indicator vectors (one bit per data
//! qubit) and syndrome vectors (one bit per ancilla) in tight Monte-Carlo
//! loops. [`BitVec`] packs them into `u64` words and provides the XOR/parity
//! operations the surface-code algebra needs.

use std::fmt;
use std::ops::BitXorAssign;

/// A fixed-length vector of bits packed into `u64` words.
///
/// Unlike `Vec<bool>`, XOR and population count operate a word at a time,
/// which is what the Monte-Carlo inner loops in
/// [`CodePatch`](crate::CodePatch) need.
///
/// # Example
///
/// ```
/// use qecool_surface_code::BitVec;
///
/// let mut bits = BitVec::zeros(130);
/// bits.set(3, true);
/// bits.toggle(129);
/// assert!(bits.get(3));
/// assert_eq!(bits.count_ones(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates a vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the vector holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Writes the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    #[inline]
    pub fn set(&mut self, idx: usize, value: bool) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let mask = 1u64 << (idx % 64);
        if value {
            self.words[idx / 64] |= mask;
        } else {
            self.words[idx / 64] &= !mask;
        }
    }

    /// Flips the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    #[inline]
    pub fn toggle(&mut self, idx: usize) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / 64] ^= 1u64 << (idx % 64);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` when no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Overwrites this vector with the contents of `other` without
    /// allocating — the word buffers are copied in place.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn copy_from(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Parity (XOR) of the bits selected by `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn parity_of<I: IntoIterator<Item = usize>>(&self, indices: I) -> bool {
        indices.into_iter().fold(false, |acc, i| acc ^ self.get(i))
    }

    /// The packed `u64` words backing the vector, little-endian within
    /// each word (bit `i` lives at `words()[i / 64]`, position `i % 64`).
    /// Bits at positions `>= self.len()` are always zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of backing words, `len().div_ceil(64)`.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Overwrites one backing word. Bits of the final word beyond
    /// `self.len()` are masked off, so the all-clear tail invariant that
    /// [`Self::count_ones`] and [`Self::is_zero`] rely on is preserved
    /// whatever the caller writes.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.num_words()`.
    #[inline]
    pub fn set_word(&mut self, idx: usize, value: u64) {
        assert!(
            idx < self.words.len(),
            "word index {idx} out of range {}",
            self.words.len()
        );
        let tail = self.len % 64;
        self.words[idx] = if idx == self.words.len() - 1 && tail != 0 {
            value & ((1u64 << tail) - 1)
        } else {
            value
        };
    }

    /// XORs a raw word slice into the vector — the word-level sibling of
    /// `^=` for callers that assemble masks outside a [`BitVec`]. The
    /// final word is tail-masked like [`Self::set_word`].
    ///
    /// # Panics
    ///
    /// Panics if `rhs` does not have exactly `self.num_words()` words.
    pub fn xor_words(&mut self, rhs: &[u64]) {
        assert_eq!(self.words.len(), rhs.len(), "word count mismatch");
        for (a, b) in self.words.iter_mut().zip(rhs) {
            *a ^= *b;
        }
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of set bits within the positions selected by `masks`
    /// (`popcount(self & masks)` without materialising the intersection).
    ///
    /// # Panics
    ///
    /// Panics if `masks` does not have exactly `self.num_words()` words.
    pub fn popcount_masked(&self, masks: &[u64]) -> usize {
        assert_eq!(self.words.len(), masks.len(), "word count mismatch");
        self.words
            .iter()
            .zip(masks)
            .map(|(w, m)| (w & m).count_ones() as usize)
            .sum()
    }

    /// Iterates over the indices of the set bits in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            bits: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl BitXorAssign<&BitVec> for BitVec {
    /// Element-wise XOR, delegating to the word-level
    /// [`BitVec::xor_words`].
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    fn bitxor_assign(&mut self, rhs: &BitVec) {
        assert_eq!(self.len, rhs.len, "BitVec length mismatch");
        self.xor_words(&rhs.words);
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ones=", self.len)?;
        f.debug_list().entries(self.iter_ones()).finish()?;
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bools: Vec<bool> = iter.into_iter().collect();
        let mut bits = BitVec::zeros(bools.len());
        for (i, b) in bools.iter().enumerate() {
            if *b {
                bits.set(i, true);
            }
        }
        bits
    }
}

/// Iterator over set-bit indices, produced by [`BitVec::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    bits: &'a BitVec,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bits.words.len() {
                return None;
            }
            self.current = self.bits.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_is_all_clear() {
        let bits = BitVec::zeros(100);
        assert_eq!(bits.len(), 100);
        assert!(bits.is_zero());
        assert_eq!(bits.count_ones(), 0);
        assert!(!bits.is_empty());
        assert!(BitVec::zeros(0).is_empty());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut bits = BitVec::zeros(130);
        for idx in [0, 1, 63, 64, 65, 127, 128, 129] {
            bits.set(idx, true);
            assert!(bits.get(idx), "bit {idx} should be set");
        }
        assert_eq!(bits.count_ones(), 8);
        bits.set(64, false);
        assert!(!bits.get(64));
        assert_eq!(bits.count_ones(), 7);
    }

    #[test]
    fn toggle_twice_is_identity() {
        let mut bits = BitVec::zeros(70);
        bits.toggle(69);
        assert!(bits.get(69));
        bits.toggle(69);
        assert!(bits.is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(10).get(10);
    }

    #[test]
    fn parity_of_selected() {
        let mut bits = BitVec::zeros(8);
        bits.set(1, true);
        bits.set(3, true);
        assert!(!bits.parity_of([1, 3]));
        assert!(bits.parity_of([1, 2]));
        assert!(!bits.parity_of([]));
    }

    #[test]
    fn iter_ones_ascending() {
        let mut bits = BitVec::zeros(200);
        let expected = [0usize, 5, 63, 64, 120, 199];
        for &i in &expected {
            bits.set(i, true);
        }
        let got: Vec<usize> = bits.iter_ones().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn copy_from_overwrites_in_place() {
        let mut dst = BitVec::zeros(100);
        dst.set(7, true);
        let mut src = BitVec::zeros(100);
        src.set(64, true);
        src.set(99, true);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert!(!dst.get(7));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn copy_from_rejects_width_mismatch() {
        BitVec::zeros(10).copy_from(&BitVec::zeros(11));
    }

    #[test]
    fn words_expose_packed_layout() {
        let mut bits = BitVec::zeros(130);
        bits.set(0, true);
        bits.set(64, true);
        bits.set(129, true);
        assert_eq!(bits.num_words(), 3);
        assert_eq!(bits.words(), &[1, 1, 2]);
    }

    #[test]
    fn set_word_masks_the_tail() {
        let mut bits = BitVec::zeros(70);
        bits.set_word(1, u64::MAX);
        // Only bits 64..70 of word 1 are in range.
        assert_eq!(bits.count_ones(), 6);
        assert!(bits.get(64) && bits.get(69));
        bits.set_word(0, 0b101);
        assert_eq!(bits.count_ones(), 8);
        assert!(bits.get(0) && !bits.get(1) && bits.get(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_word_rejects_bad_index() {
        BitVec::zeros(64).set_word(1, 0);
    }

    #[test]
    fn xor_words_matches_bitxor_and_masks_tail() {
        let mut a = BitVec::zeros(70);
        a.set(3, true);
        a.xor_words(&[0b1010, u64::MAX]);
        // Word 0: {1, 3} ⊕ {3} = {1}; word 1: bits 64..70 survive the
        // tail mask. Bits beyond 70 must not leak into counts.
        assert!(a.get(1) && !a.get(3));
        assert_eq!(a.count_ones(), 1 + 6);
    }

    #[test]
    #[should_panic(expected = "word count mismatch")]
    fn xor_words_rejects_width_mismatch() {
        BitVec::zeros(70).xor_words(&[0]);
    }

    #[test]
    fn popcount_masked_counts_intersection() {
        let mut bits = BitVec::zeros(130);
        for i in [0, 5, 64, 100, 129] {
            bits.set(i, true);
        }
        let all = vec![u64::MAX; bits.num_words()];
        assert_eq!(bits.popcount_masked(&all), 5);
        // Word 0 mask 1 hits bit 0; word 1 full mask hits bits 64, 100.
        assert_eq!(bits.popcount_masked(&[1, u64::MAX, 0]), 3);
        assert_eq!(bits.popcount_masked(&[0, 0, 0]), 0);
    }

    #[test]
    #[should_panic(expected = "word count mismatch")]
    fn popcount_masked_rejects_width_mismatch() {
        BitVec::zeros(130).popcount_masked(&[0]);
    }

    #[test]
    fn from_iterator_roundtrip() {
        let bools = [true, false, true, true, false];
        let bits: BitVec = bools.iter().copied().collect();
        assert_eq!(bits.len(), 5);
        for (i, b) in bools.iter().enumerate() {
            assert_eq!(bits.get(i), *b);
        }
    }

    #[test]
    fn debug_lists_ones() {
        let mut bits = BitVec::zeros(8);
        bits.set(2, true);
        let s = format!("{bits:?}");
        assert!(s.contains('2'), "debug output should mention bit 2: {s}");
    }

    proptest! {
        #[test]
        fn xor_assign_matches_boolwise(
            a in proptest::collection::vec(any::<bool>(), 1..200),
            seed in any::<u64>(),
        ) {
            // Build b as a deterministic shuffle of a's length.
            let b: Vec<bool> = a
                .iter()
                .enumerate()
                .map(|(i, _)| (seed.wrapping_mul(i as u64 + 1) >> 7) & 1 == 1)
                .collect();
            let mut va: BitVec = a.iter().copied().collect();
            let vb: BitVec = b.iter().copied().collect();
            va ^= &vb;
            for i in 0..a.len() {
                prop_assert_eq!(va.get(i), a[i] ^ b[i]);
            }
        }

        #[test]
        fn count_ones_matches_boolwise(a in proptest::collection::vec(any::<bool>(), 0..300)) {
            let bits: BitVec = a.iter().copied().collect();
            prop_assert_eq!(bits.count_ones(), a.iter().filter(|&&x| x).count());
            prop_assert_eq!(bits.is_zero(), a.iter().all(|&x| !x));
        }

        #[test]
        fn iter_ones_matches_boolwise(a in proptest::collection::vec(any::<bool>(), 0..300)) {
            let bits: BitVec = a.iter().copied().collect();
            let got: Vec<usize> = bits.iter_ones().collect();
            let expected: Vec<usize> = a
                .iter()
                .enumerate()
                .filter_map(|(i, &x)| x.then_some(i))
                .collect();
            prop_assert_eq!(got, expected);
        }
    }
}
