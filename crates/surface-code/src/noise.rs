//! Noise models for the quantum error simulator: a matrix of noise
//! *families*, each a [`NoiseModel`], named and parameterized by the
//! serializable [`NoiseSpec`] enum.
//!
//! The paper evaluates QECOOL under the **phenomenological noise model**
//! (Dennis et al. \[4\]): in every measurement round each data qubit
//! suffers a Pauli-X flip with probability `p`, and each syndrome
//! measurement result is read out wrongly with probability `q`. The paper
//! assumes `q = p` ("the error probabilities of data and ancilla qubits
//! are equal", §III-C). That model is still the default, but it is now
//! one row of a family matrix:
//!
//! | family             | spec variant                       | model                    |
//! |--------------------|------------------------------------|--------------------------|
//! | `phenomenological` | [`NoiseSpec::Phenomenological`]    | [`PhenomenologicalNoise`] with `q = p` |
//! | `asymmetric`       | [`NoiseSpec::Asymmetric`]          | [`PhenomenologicalNoise`] with `q ≠ p` |
//! | `code_capacity`    | [`NoiseSpec::CodeCapacity`]        | [`CodeCapacityNoise`] (perfect measurement, the "2-D" Table IV columns) |
//! | `biased`           | [`NoiseSpec::Biased`]              | [`BiasedNoise`] (Z-heavy bias `eta` starves the X sector) |
//! | `erasure`          | [`NoiseSpec::Erasure`]             | [`ErasureNoise`] (heralded erasures flagged per data qubit) |
//! | `burst`            | [`NoiseSpec::Burst`]               | [`BurstNoise`] (correlated runs with geometric lengths) |
//!
//! [`NoiseSpec`] is the one construction site for all of them: it parses
//! the CLI `family[:k=v,…]` syntax ([`NoiseSpec::parse`]), validates
//! every rate with the offending field named ([`NoiseSpec::validate`],
//! so the CLI path never reaches a model constructor's panic), and
//! builds the enum-dispatched [`AnyNoise`] ([`NoiseSpec::build`]).
//! Every model reports its spec back via [`NoiseModel::spec`], so perf
//! and campaign artifacts can name the family they ran under.
//!
//! Families that go beyond i.i.d. per-qubit flips implement
//! [`NoiseModel::apply_data_round`], which owns the whole per-round data
//! error pass (and the optional per-data-qubit erasure flags). The
//! default body reproduces, draw for draw, the loop `CodePatch` has
//! always run, so i.i.d. models keep byte-identical RNG streams.

use crate::bitvec::BitVec;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A per-round error process for the simulator.
///
/// A noise model answers two questions for each round: with what probability
/// does each data qubit flip, and with what probability is each syndrome
/// readout wrong. Correlated families additionally override
/// [`NoiseModel::apply_data_round`] to own the whole data-error pass.
pub trait NoiseModel {
    /// Probability that a given data qubit suffers an X flip in one round.
    fn data_error_rate(&self) -> f64;

    /// Probability that a given syndrome measurement is misread in one round.
    fn measurement_error_rate(&self) -> f64;

    /// The serializable spec this model was built from, for artifacts that
    /// must name the noise family they ran under.
    fn spec(&self) -> NoiseSpec;

    /// Whether [`NoiseModel::apply_data_round`] produces erasure flags.
    /// Sources use this to decide whether to allocate a flag plane.
    fn tracks_erasures(&self) -> bool {
        false
    }

    /// Applies one round of data-qubit noise to `errors` (one bit per data
    /// qubit), optionally writing per-qubit erasure flags to `erasures`
    /// (same length; cleared first).
    ///
    /// The default body is the exact independent-flip loop `CodePatch`
    /// historically ran inline — read the rate once, early-return at zero,
    /// one `gen_bool` per data qubit — so models that don't override this
    /// keep byte-identical RNG streams with pre-`NoiseSpec` builds.
    fn apply_data_round<R: Rng + ?Sized>(
        &self,
        errors: &mut BitVec,
        erasures: Option<&mut BitVec>,
        rng: &mut R,
    ) {
        if let Some(flags) = erasures {
            flags.clear();
        }
        let p = self.data_error_rate();
        if p == 0.0 {
            return;
        }
        for q in 0..errors.len() {
            if rng.gen_bool(p) {
                errors.toggle(q);
            }
        }
    }

    /// Samples whether a single data qubit flips this round.
    fn sample_data_flip<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen_bool(self.data_error_rate())
    }

    /// Samples whether a single measurement is misread this round.
    fn sample_measurement_flip<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen_bool(self.measurement_error_rate())
    }
}

/// A serializable description of a noise family and its parameters: the
/// one construction site for every [`NoiseModel`] in the workspace.
///
/// Specs flow through `TrialConfig`, campaign checkpoints (hashed into the
/// job-list fingerprint) and the bench `--noise family[:k=v,…]` flag; a
/// model hands its spec back via [`NoiseModel::spec`].
///
/// # Example
///
/// ```
/// use qecool_surface_code::{NoiseModel, NoiseSpec};
///
/// let spec = NoiseSpec::parse("asymmetric:p=0.01,q=0.03")?;
/// let noise = spec.build();
/// assert_eq!(noise.data_error_rate(), 0.01);
/// assert_eq!(noise.measurement_error_rate(), 0.03);
/// assert_eq!(noise.spec(), spec);
/// # Ok::<(), qecool_surface_code::NoiseSpecError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoiseSpec {
    /// The paper's model: data and measurement flips at the same rate `p`.
    Phenomenological {
        /// Shared data/measurement error rate per round.
        p: f64,
    },
    /// Phenomenological noise with independent data (`p`) and
    /// measurement (`q`) rates.
    Asymmetric {
        /// Data error rate per round.
        p: f64,
        /// Measurement error rate per round.
        q: f64,
    },
    /// Perfect measurements (`q = 0`), single-round experiments.
    CodeCapacity {
        /// Data error rate.
        p: f64,
    },
    /// Z-biased noise: of a total physical error rate `p`, only the
    /// `1 / (1 + eta)` X-fraction lands in this simulator's X sector
    /// (measurements still flip at `p`).
    Biased {
        /// Total physical error rate per round.
        p: f64,
        /// Bias ratio `eta = p_Z / p_X`; `eta = 0` recovers the
        /// phenomenological rates.
        eta: f64,
    },
    /// Heralded erasures: background phenomenological noise at `p`, plus
    /// each data qubit is erased with probability `e` per round — flagged,
    /// and depolarized into a 50/50 flip.
    Erasure {
        /// Background data/measurement error rate per round.
        p: f64,
        /// Per-qubit erasure rate per round.
        e: f64,
    },
    /// Burst/correlated errors: background phenomenological noise at `p`,
    /// plus bursts that start at any data qubit with probability `burst`
    /// and flip a geometric-length run (mean `mean_len`) of consecutive
    /// qubits.
    Burst {
        /// Background data/measurement error rate per round.
        p: f64,
        /// Per-qubit burst-start probability per round.
        burst: f64,
        /// Mean burst run length in qubits (`>= 1`).
        mean_len: f64,
    },
}

/// A malformed [`NoiseSpec`]: the reject reason always names the field,
/// so CLI parsing can exit with a usable message instead of a model
/// constructor's panic.
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseSpecError {
    /// A probability field outside `[0, 1]` (or not finite).
    RateOutOfRange {
        /// Which field was rejected (`"p"`, `"q"`, `"e"`, `"burst"`).
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A shape parameter outside its domain (`eta >= 0`, `mean_len >= 1`).
    ParamOutOfRange {
        /// Which field was rejected.
        field: &'static str,
        /// The rejected value.
        value: f64,
        /// The domain it must lie in, e.g. `">= 1"`.
        domain: &'static str,
    },
    /// The family name before the `:` is not one of the six families.
    UnknownFamily(String),
    /// A `k=v` key the named family does not take.
    UnknownKey {
        /// The family being parsed.
        family: &'static str,
        /// The rejected key.
        key: String,
    },
    /// A `k=v` entry whose value is not a float, or with no `=` at all.
    BadValue {
        /// The key (or the whole malformed entry).
        key: String,
        /// The unparsable value text.
        value: String,
    },
}

impl fmt::Display for NoiseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RateOutOfRange { field, value } => {
                write!(f, "noise rate '{field}' = {value} is out of [0,1]")
            }
            Self::ParamOutOfRange {
                field,
                value,
                domain,
            } => {
                write!(f, "noise parameter '{field}' = {value} must be {domain}")
            }
            Self::UnknownFamily(name) => write!(
                f,
                "unknown noise family '{name}' (expected one of: phenomenological, \
                 asymmetric, code_capacity, biased, erasure, burst)"
            ),
            Self::UnknownKey { family, key } => {
                write!(f, "noise family '{family}' takes no parameter '{key}'")
            }
            Self::BadValue { key, value } => {
                write!(f, "noise parameter '{key}' has unparsable value '{value}'")
            }
        }
    }
}

impl std::error::Error for NoiseSpecError {}

fn check_rate(field: &'static str, value: f64) -> Result<(), NoiseSpecError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(NoiseSpecError::RateOutOfRange { field, value })
    }
}

impl NoiseSpec {
    /// Every family name [`NoiseSpec::parse`] accepts, in parse order.
    pub const FAMILIES: &'static [&'static str] = &[
        "phenomenological",
        "asymmetric",
        "code_capacity",
        "biased",
        "erasure",
        "burst",
    ];

    /// The family name, as spelled on the CLI and in perf records.
    pub fn family(&self) -> &'static str {
        match self {
            Self::Phenomenological { .. } => "phenomenological",
            Self::Asymmetric { .. } => "asymmetric",
            Self::CodeCapacity { .. } => "code_capacity",
            Self::Biased { .. } => "biased",
            Self::Erasure { .. } => "erasure",
            Self::Burst { .. } => "burst",
        }
    }

    /// The primary physical error rate `p` — the sweep axis every family
    /// shares.
    pub fn rate(&self) -> f64 {
        match *self {
            Self::Phenomenological { p }
            | Self::Asymmetric { p, .. }
            | Self::CodeCapacity { p }
            | Self::Biased { p, .. }
            | Self::Erasure { p, .. }
            | Self::Burst { p, .. } => p,
        }
    }

    /// The same family with the primary rate replaced by `p` (shape
    /// parameters — `q`, `eta`, `e`, burst geometry — are kept). This is
    /// how sweeps move one spec along the error-rate axis.
    #[must_use]
    pub fn with_rate(self, p: f64) -> Self {
        match self {
            Self::Phenomenological { .. } => Self::Phenomenological { p },
            Self::Asymmetric { q, .. } => Self::Asymmetric { p, q },
            Self::CodeCapacity { .. } => Self::CodeCapacity { p },
            Self::Biased { eta, .. } => Self::Biased { p, eta },
            Self::Erasure { e, .. } => Self::Erasure { p, e },
            Self::Burst {
                burst, mean_len, ..
            } => Self::Burst { p, burst, mean_len },
        }
    }

    /// The parameters as `k=v` pairs joined by `,` — the tail of the CLI
    /// syntax, and what perf records archive as `noise_params`.
    pub fn params(&self) -> String {
        match *self {
            Self::Phenomenological { p } | Self::CodeCapacity { p } => format!("p={p}"),
            Self::Asymmetric { p, q } => format!("p={p},q={q}"),
            Self::Biased { p, eta } => format!("p={p},eta={eta}"),
            Self::Erasure { p, e } => format!("p={p},e={e}"),
            Self::Burst { p, burst, mean_len } => {
                format!("p={p},burst={burst},mean_len={mean_len}")
            }
        }
    }

    /// Checks every field against its domain, naming the offender.
    ///
    /// # Errors
    ///
    /// The first out-of-domain field, as a [`NoiseSpecError`].
    pub fn validate(&self) -> Result<(), NoiseSpecError> {
        match *self {
            Self::Phenomenological { p } | Self::CodeCapacity { p } => check_rate("p", p),
            Self::Asymmetric { p, q } => {
                check_rate("p", p)?;
                check_rate("q", q)
            }
            Self::Biased { p, eta } => {
                check_rate("p", p)?;
                if eta.is_finite() && eta >= 0.0 {
                    Ok(())
                } else {
                    Err(NoiseSpecError::ParamOutOfRange {
                        field: "eta",
                        value: eta,
                        domain: ">= 0 and finite",
                    })
                }
            }
            Self::Erasure { p, e } => {
                check_rate("p", p)?;
                check_rate("e", e)
            }
            Self::Burst { p, burst, mean_len } => {
                check_rate("p", p)?;
                check_rate("burst", burst)?;
                if mean_len.is_finite() && mean_len >= 1.0 {
                    Ok(())
                } else {
                    Err(NoiseSpecError::ParamOutOfRange {
                        field: "mean_len",
                        value: mean_len,
                        domain: ">= 1 and finite",
                    })
                }
            }
        }
    }

    /// Parses the CLI syntax `family[:k=v,…]`; omitted keys take the
    /// family's defaults. The result is always validated.
    ///
    /// # Errors
    ///
    /// A [`NoiseSpecError`] naming the unknown family, unknown key,
    /// unparsable value, or out-of-domain field.
    pub fn parse(text: &str) -> Result<Self, NoiseSpecError> {
        let (family, tail) = match text.split_once(':') {
            Some((f, t)) => (f, t),
            None => (text, ""),
        };
        let mut spec = match family {
            "phenomenological" => Self::Phenomenological { p: 0.01 },
            "asymmetric" => Self::Asymmetric { p: 0.01, q: 0.02 },
            "code_capacity" => Self::CodeCapacity { p: 0.01 },
            "biased" => Self::Biased { p: 0.01, eta: 10.0 },
            "erasure" => Self::Erasure { p: 0.005, e: 0.01 },
            "burst" => Self::Burst {
                p: 0.005,
                burst: 0.001,
                mean_len: 3.0,
            },
            other => return Err(NoiseSpecError::UnknownFamily(other.to_owned())),
        };
        for entry in tail.split(',').filter(|e| !e.is_empty()) {
            let Some((key, value)) = entry.split_once('=') else {
                return Err(NoiseSpecError::BadValue {
                    key: entry.to_owned(),
                    value: String::new(),
                });
            };
            let parsed: f64 = value.parse().map_err(|_| NoiseSpecError::BadValue {
                key: key.to_owned(),
                value: value.to_owned(),
            })?;
            spec = spec.with_key(key, parsed)?;
        }
        spec.validate()?;
        Ok(spec)
    }

    fn with_key(self, key: &str, value: f64) -> Result<Self, NoiseSpecError> {
        let reject = |family| {
            Err(NoiseSpecError::UnknownKey {
                family,
                key: key.to_owned(),
            })
        };
        Ok(match (self, key) {
            (spec, "p") => spec.with_rate(value),
            (Self::Asymmetric { p, .. }, "q") => Self::Asymmetric { p, q: value },
            (Self::Biased { p, .. }, "eta") => Self::Biased { p, eta: value },
            (Self::Erasure { p, .. }, "e") => Self::Erasure { p, e: value },
            (Self::Burst { p, mean_len, .. }, "burst") => Self::Burst {
                p,
                burst: value,
                mean_len,
            },
            (Self::Burst { p, burst, .. }, "mean_len") => Self::Burst {
                p,
                burst,
                mean_len: value,
            },
            (spec, _) => return reject(spec.family()),
        })
    }

    /// Builds the model this spec describes — the workspace's single
    /// noise construction site.
    ///
    /// # Panics
    ///
    /// Panics if the spec was never validated and a rate is out of
    /// domain; [`NoiseSpec::parse`] and [`NoiseSpec::validate`] are the
    /// non-panicking gates in front of this.
    pub fn build(&self) -> AnyNoise {
        match *self {
            Self::Phenomenological { p } => {
                AnyNoise::Phenomenological(PhenomenologicalNoise::symmetric(p))
            }
            Self::Asymmetric { p, q } => {
                AnyNoise::Phenomenological(PhenomenologicalNoise::new(p, q))
            }
            Self::CodeCapacity { p } => AnyNoise::CodeCapacity(CodeCapacityNoise::new(p)),
            Self::Biased { p, eta } => AnyNoise::Biased(BiasedNoise::new(p, eta)),
            Self::Erasure { p, e } => AnyNoise::Erasure(ErasureNoise::new(p, e)),
            Self::Burst { p, burst, mean_len } => {
                AnyNoise::Burst(BurstNoise::new(p, burst, mean_len))
            }
        }
    }
}

impl fmt::Display for NoiseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.family(), self.params())
    }
}

/// Phenomenological noise: data flips with probability `p` *and* measurement
/// flips with probability `q` per round.
///
/// # Example
///
/// ```
/// use qecool_surface_code::{NoiseModel, PhenomenologicalNoise};
///
/// let noise = PhenomenologicalNoise::symmetric(0.01);
/// assert_eq!(noise.data_error_rate(), 0.01);
/// assert_eq!(noise.measurement_error_rate(), 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhenomenologicalNoise {
    p: f64,
    q: f64,
}

impl PhenomenologicalNoise {
    /// Creates a model with independent data (`p`) and measurement (`q`)
    /// error rates.
    ///
    /// # Panics
    ///
    /// Panics unless both rates lie in `[0, 1]`. CLI paths must validate
    /// through [`NoiseSpec::parse`] instead of reaching this assert.
    pub fn new(p: f64, q: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "data error rate out of [0,1]");
        assert!(
            (0.0..=1.0).contains(&q),
            "measurement error rate out of [0,1]"
        );
        Self { p, q }
    }

    /// The paper's setting: equal data and measurement error rates.
    ///
    /// # Panics
    ///
    /// Panics unless `p` lies in `[0, 1]`.
    pub fn symmetric(p: f64) -> Self {
        Self::new(p, p)
    }
}

impl NoiseModel for PhenomenologicalNoise {
    fn data_error_rate(&self) -> f64 {
        self.p
    }

    fn measurement_error_rate(&self) -> f64 {
        self.q
    }

    fn spec(&self) -> NoiseSpec {
        if self.p == self.q {
            NoiseSpec::Phenomenological { p: self.p }
        } else {
            NoiseSpec::Asymmetric {
                p: self.p,
                q: self.q,
            }
        }
    }
}

/// Code-capacity noise: data flips with probability `p`, measurements are
/// perfect. Used for "2-D" (single-layer) threshold experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeCapacityNoise {
    p: f64,
}

impl CodeCapacityNoise {
    /// Creates a code-capacity model with data error rate `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` lies in `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "data error rate out of [0,1]");
        Self { p }
    }
}

impl NoiseModel for CodeCapacityNoise {
    fn data_error_rate(&self) -> f64 {
        self.p
    }

    fn measurement_error_rate(&self) -> f64 {
        0.0
    }

    fn spec(&self) -> NoiseSpec {
        NoiseSpec::CodeCapacity { p: self.p }
    }
}

/// Z-biased noise in an X-sector simulation: of the total physical error
/// rate `p`, X flips get the `1 / (1 + eta)` fraction (`eta = p_Z / p_X`);
/// measurements still flip at the full `p`. `eta = 0` recovers the
/// phenomenological model; large `eta` starves this sector, which is
/// exactly how biased-noise hardware buys distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasedNoise {
    p: f64,
    eta: f64,
}

impl BiasedNoise {
    /// Creates a biased model with total rate `p` and bias ratio `eta`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` lies in `[0, 1]` and `eta >= 0` is finite.
    pub fn new(p: f64, eta: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "data error rate out of [0,1]");
        assert!(eta.is_finite() && eta >= 0.0, "bias ratio out of [0,inf)");
        Self { p, eta }
    }
}

impl NoiseModel for BiasedNoise {
    fn data_error_rate(&self) -> f64 {
        self.p / (1.0 + self.eta)
    }

    fn measurement_error_rate(&self) -> f64 {
        self.p
    }

    fn spec(&self) -> NoiseSpec {
        NoiseSpec::Biased {
            p: self.p,
            eta: self.eta,
        }
    }
}

/// Heralded-erasure noise: background phenomenological noise at `p`, plus
/// each data qubit is *erased* with probability `e` per round. An erased
/// qubit is flagged in the erasure plane and depolarizes — in the X
/// sector, a 50/50 flip on top of the background.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErasureNoise {
    p: f64,
    e: f64,
}

impl ErasureNoise {
    /// Creates an erasure model with background rate `p` and erasure
    /// rate `e`.
    ///
    /// # Panics
    ///
    /// Panics unless both rates lie in `[0, 1]`.
    pub fn new(p: f64, e: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "data error rate out of [0,1]");
        assert!((0.0..=1.0).contains(&e), "erasure rate out of [0,1]");
        Self { p, e }
    }
}

impl NoiseModel for ErasureNoise {
    fn data_error_rate(&self) -> f64 {
        self.p
    }

    fn measurement_error_rate(&self) -> f64 {
        self.p
    }

    fn spec(&self) -> NoiseSpec {
        NoiseSpec::Erasure {
            p: self.p,
            e: self.e,
        }
    }

    fn tracks_erasures(&self) -> bool {
        true
    }

    fn apply_data_round<R: Rng + ?Sized>(
        &self,
        errors: &mut BitVec,
        erasures: Option<&mut BitVec>,
        rng: &mut R,
    ) {
        if self.p > 0.0 {
            for q in 0..errors.len() {
                if rng.gen_bool(self.p) {
                    errors.toggle(q);
                }
            }
        }
        let Some(flags) = erasures else {
            // No flag plane offered: erasures still flip, just unheralded.
            if self.e > 0.0 {
                for q in 0..errors.len() {
                    if rng.gen_bool(self.e) && rng.gen_bool(0.5) {
                        errors.toggle(q);
                    }
                }
            }
            return;
        };
        flags.clear();
        if self.e == 0.0 {
            return;
        }
        for q in 0..errors.len() {
            if rng.gen_bool(self.e) {
                flags.set(q, true);
                if rng.gen_bool(0.5) {
                    errors.toggle(q);
                }
            }
        }
    }
}

/// Burst/correlated noise: background phenomenological noise at `p`, plus
/// bursts — a burst starts at any data qubit with probability `burst` per
/// round and flips a run of consecutive qubits whose length is geometric
/// with mean `mean_len`. Runs of index-consecutive data qubits are
/// spatially local in the lattice's row-major edge order, giving the
/// correlated stripes that stress a nearest-pair decoder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstNoise {
    p: f64,
    burst: f64,
    mean_len: f64,
}

impl BurstNoise {
    /// Creates a burst model with background rate `p`, burst-start rate
    /// `burst`, and mean run length `mean_len`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` and `burst` lie in `[0, 1]` and
    /// `mean_len >= 1` is finite.
    pub fn new(p: f64, burst: f64, mean_len: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "data error rate out of [0,1]");
        assert!((0.0..=1.0).contains(&burst), "burst rate out of [0,1]");
        assert!(
            mean_len.is_finite() && mean_len >= 1.0,
            "mean burst length out of [1,inf)"
        );
        Self { p, burst, mean_len }
    }
}

impl NoiseModel for BurstNoise {
    fn data_error_rate(&self) -> f64 {
        self.p
    }

    fn measurement_error_rate(&self) -> f64 {
        self.p
    }

    fn spec(&self) -> NoiseSpec {
        NoiseSpec::Burst {
            p: self.p,
            burst: self.burst,
            mean_len: self.mean_len,
        }
    }

    fn apply_data_round<R: Rng + ?Sized>(
        &self,
        errors: &mut BitVec,
        erasures: Option<&mut BitVec>,
        rng: &mut R,
    ) {
        if let Some(flags) = erasures {
            flags.clear();
        }
        if self.p > 0.0 {
            for q in 0..errors.len() {
                if rng.gen_bool(self.p) {
                    errors.toggle(q);
                }
            }
        }
        if self.burst == 0.0 {
            return;
        }
        // Geometric run lengths: continue the run with probability
        // 1 - 1/mean_len, so E[len] = mean_len.
        let cont = 1.0 - 1.0 / self.mean_len;
        let mut q = 0;
        while q < errors.len() {
            if rng.gen_bool(self.burst) {
                errors.toggle(q);
                q += 1;
                while q < errors.len() && cont > 0.0 && rng.gen_bool(cont) {
                    errors.toggle(q);
                    q += 1;
                }
            } else {
                q += 1;
            }
        }
    }
}

/// Enum dispatch over every noise family, so one concrete type can flow
/// through `TrialConfig` and the simulated syndrome source. Built by
/// [`NoiseSpec::build`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnyNoise {
    /// Phenomenological (symmetric or asymmetric rates).
    Phenomenological(PhenomenologicalNoise),
    /// Code capacity (perfect measurement).
    CodeCapacity(CodeCapacityNoise),
    /// Z-biased.
    Biased(BiasedNoise),
    /// Heralded erasure.
    Erasure(ErasureNoise),
    /// Burst/correlated.
    Burst(BurstNoise),
}

impl NoiseModel for AnyNoise {
    fn data_error_rate(&self) -> f64 {
        match self {
            Self::Phenomenological(n) => n.data_error_rate(),
            Self::CodeCapacity(n) => n.data_error_rate(),
            Self::Biased(n) => n.data_error_rate(),
            Self::Erasure(n) => n.data_error_rate(),
            Self::Burst(n) => n.data_error_rate(),
        }
    }

    fn measurement_error_rate(&self) -> f64 {
        match self {
            Self::Phenomenological(n) => n.measurement_error_rate(),
            Self::CodeCapacity(n) => n.measurement_error_rate(),
            Self::Biased(n) => n.measurement_error_rate(),
            Self::Erasure(n) => n.measurement_error_rate(),
            Self::Burst(n) => n.measurement_error_rate(),
        }
    }

    fn spec(&self) -> NoiseSpec {
        match self {
            Self::Phenomenological(n) => n.spec(),
            Self::CodeCapacity(n) => n.spec(),
            Self::Biased(n) => n.spec(),
            Self::Erasure(n) => n.spec(),
            Self::Burst(n) => n.spec(),
        }
    }

    fn tracks_erasures(&self) -> bool {
        match self {
            Self::Phenomenological(n) => n.tracks_erasures(),
            Self::CodeCapacity(n) => n.tracks_erasures(),
            Self::Biased(n) => n.tracks_erasures(),
            Self::Erasure(n) => n.tracks_erasures(),
            Self::Burst(n) => n.tracks_erasures(),
        }
    }

    // Explicit delegation (not the trait default) so families that
    // override the data pass keep their override behind the enum.
    fn apply_data_round<R: Rng + ?Sized>(
        &self,
        errors: &mut BitVec,
        erasures: Option<&mut BitVec>,
        rng: &mut R,
    ) {
        match self {
            Self::Phenomenological(n) => n.apply_data_round(errors, erasures, rng),
            Self::CodeCapacity(n) => n.apply_data_round(errors, erasures, rng),
            Self::Biased(n) => n.apply_data_round(errors, erasures, rng),
            Self::Erasure(n) => n.apply_data_round(errors, erasures, rng),
            Self::Burst(n) => n.apply_data_round(errors, erasures, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn symmetric_sets_both_rates() {
        let n = PhenomenologicalNoise::symmetric(0.02);
        assert_eq!(n.data_error_rate(), 0.02);
        assert_eq!(n.measurement_error_rate(), 0.02);
    }

    #[test]
    fn asymmetric_rates_are_independent() {
        let n = PhenomenologicalNoise::new(0.01, 0.05);
        assert_eq!(n.data_error_rate(), 0.01);
        assert_eq!(n.measurement_error_rate(), 0.05);
    }

    #[test]
    fn code_capacity_has_perfect_measurement() {
        let n = CodeCapacityNoise::new(0.1);
        assert_eq!(n.data_error_rate(), 0.1);
        assert_eq!(n.measurement_error_rate(), 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!n.sample_measurement_flip(&mut rng));
        }
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn rejects_invalid_rate() {
        PhenomenologicalNoise::symmetric(1.5);
    }

    #[test]
    fn sample_statistics_are_plausible() {
        // 10k samples at p = 0.3: expect ~3000 hits; allow a wide band.
        let n = PhenomenologicalNoise::symmetric(0.3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| n.sample_data_flip(&mut rng)).count();
        assert!((2500..3500).contains(&hits), "got {hits} hits");
    }

    #[test]
    fn zero_rate_never_fires() {
        let n = PhenomenologicalNoise::symmetric(0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        assert!((0..1000).all(|_| !n.sample_data_flip(&mut rng)));
    }

    #[test]
    fn unit_rate_always_fires() {
        let n = PhenomenologicalNoise::symmetric(1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        assert!((0..1000).all(|_| n.sample_data_flip(&mut rng)));
    }

    #[test]
    fn parse_accepts_every_family_with_defaults() {
        for family in NoiseSpec::FAMILIES {
            let spec = NoiseSpec::parse(family).expect(family);
            assert_eq!(spec.family(), *family);
            spec.validate().expect(family);
            // Building a validated spec never panics.
            let _ = spec.build();
        }
    }

    #[test]
    fn parse_round_trips_through_display() {
        for text in [
            "phenomenological:p=0.02",
            "asymmetric:p=0.01,q=0.03",
            "code_capacity:p=0.1",
            "biased:p=0.01,eta=4",
            "erasure:p=0.001,e=0.02",
            "burst:p=0.001,burst=0.0005,mean_len=5",
        ] {
            let spec = NoiseSpec::parse(text).expect(text);
            let again = NoiseSpec::parse(&spec.to_string()).expect(text);
            assert_eq!(spec, again, "{text}");
        }
    }

    #[test]
    fn parse_names_the_bad_field() {
        match NoiseSpec::parse("phenomenological:p=1.5") {
            Err(NoiseSpecError::RateOutOfRange { field: "p", value }) => {
                assert_eq!(value, 1.5);
            }
            other => panic!("expected RateOutOfRange, got {other:?}"),
        }
        assert!(matches!(
            NoiseSpec::parse("asymmetric:q=nope"),
            Err(NoiseSpecError::BadValue { .. })
        ));
        assert!(matches!(
            NoiseSpec::parse("glitch"),
            Err(NoiseSpecError::UnknownFamily(_))
        ));
        assert!(matches!(
            NoiseSpec::parse("code_capacity:q=0.1"),
            Err(NoiseSpecError::UnknownKey { .. })
        ));
        assert!(matches!(
            NoiseSpec::parse("burst:mean_len=0.5"),
            Err(NoiseSpecError::ParamOutOfRange {
                field: "mean_len",
                ..
            })
        ));
    }

    #[test]
    fn spec_round_trips_through_every_model() {
        for text in [
            "phenomenological:p=0.02",
            "asymmetric:p=0.01,q=0.03",
            "code_capacity:p=0.1",
            "biased:p=0.01,eta=4",
            "erasure:p=0.001,e=0.02",
            "burst:p=0.001,burst=0.0005,mean_len=5",
        ] {
            let spec = NoiseSpec::parse(text).expect(text);
            assert_eq!(spec.build().spec(), spec, "{text}");
        }
    }

    #[test]
    fn with_rate_keeps_shape_parameters() {
        let spec = NoiseSpec::parse("burst:p=0.001,burst=0.0005,mean_len=5").unwrap();
        assert_eq!(
            spec.with_rate(0.09),
            NoiseSpec::Burst {
                p: 0.09,
                burst: 0.0005,
                mean_len: 5.0
            }
        );
        let spec = NoiseSpec::parse("asymmetric:p=0.01,q=0.03").unwrap();
        assert_eq!(
            spec.with_rate(0.02),
            NoiseSpec::Asymmetric { p: 0.02, q: 0.03 }
        );
        assert_eq!(spec.with_rate(0.02).rate(), 0.02);
    }

    #[test]
    fn biased_noise_starves_the_x_sector() {
        let n = BiasedNoise::new(0.1, 9.0);
        assert!((n.data_error_rate() - 0.01).abs() < 1e-12);
        assert_eq!(n.measurement_error_rate(), 0.1);
    }

    #[test]
    fn default_apply_data_round_matches_the_inline_loop() {
        // The default trait body must reproduce the historical CodePatch
        // loop draw for draw: same rate, same per-qubit gen_bool order.
        let n = PhenomenologicalNoise::symmetric(0.3);
        let mut via_trait = BitVec::zeros(130);
        let mut inline = BitVec::zeros(130);
        let mut rng_a = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let mut rng_b = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        n.apply_data_round(&mut via_trait, None, &mut rng_a);
        let p = n.data_error_rate();
        for q in 0..inline.len() {
            if rng_b.gen_bool(p) {
                inline.toggle(q);
            }
        }
        assert_eq!(via_trait.words(), inline.words());
        use rand::RngCore;
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "rng streams diverged");
    }

    #[test]
    fn erasure_noise_flags_and_flips() {
        let n = ErasureNoise::new(0.0, 1.0);
        let mut errors = BitVec::zeros(200);
        let mut flags = BitVec::zeros(200);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        n.apply_data_round(&mut errors, Some(&mut flags), &mut rng);
        // e = 1: every qubit erased; about half flip.
        assert_eq!(flags.count_ones(), 200);
        let flips = errors.count_ones();
        assert!((60..=140).contains(&flips), "got {flips} flips");
        assert!(n.tracks_erasures());
    }

    #[test]
    fn erasure_noise_flips_even_without_a_flag_plane() {
        let n = ErasureNoise::new(0.0, 1.0);
        let mut errors = BitVec::zeros(200);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        n.apply_data_round(&mut errors, None, &mut rng);
        let flips = errors.count_ones();
        assert!((60..=140).contains(&flips), "got {flips} flips");
    }

    #[test]
    fn burst_noise_produces_runs() {
        // Pure bursts, no background: every 1-region is a consecutive
        // run, and with mean_len = 4 the average run is well above 1.
        let n = BurstNoise::new(0.0, 0.02, 4.0);
        let mut errors = BitVec::zeros(4096);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        n.apply_data_round(&mut errors, None, &mut rng);
        let ones = errors.count_ones();
        assert!(ones > 0, "no bursts fired");
        let mut runs = 0usize;
        let mut prev = false;
        for q in 0..errors.len() {
            let bit = errors.get(q);
            if bit && !prev {
                runs += 1;
            }
            prev = bit;
        }
        let mean_run = ones as f64 / runs as f64;
        assert!(mean_run > 1.5, "mean run {mean_run} too short for bursts");
    }

    #[test]
    fn any_noise_dispatches_the_override() {
        // Through AnyNoise, the erasure model must still produce flags —
        // i.e. enum dispatch reaches the override, not the default body.
        let spec = NoiseSpec::Erasure { p: 0.0, e: 1.0 };
        let n = spec.build();
        let mut errors = BitVec::zeros(64);
        let mut flags = BitVec::zeros(64);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        n.apply_data_round(&mut errors, Some(&mut flags), &mut rng);
        assert_eq!(flags.count_ones(), 64);
        assert!(n.tracks_erasures());
    }
}
