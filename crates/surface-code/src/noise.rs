//! Noise models for the quantum error simulator.
//!
//! The paper evaluates QECOOL under the **phenomenological noise model**
//! (Dennis et al. \[4\]): in every measurement round each data qubit suffers a
//! Pauli-X flip with probability `p`, and each syndrome measurement result is
//! read out wrongly with probability `q`. The paper assumes `q = p`
//! ("the error probabilities of data and ancilla qubits are equal", §III-C).
//!
//! The **code-capacity model** (perfect measurements, `q = 0`) is also
//! provided; it is what the "2-D" threshold columns of Table IV refer to.

use rand::Rng;

/// A per-round error process for the simulator.
///
/// A noise model answers two questions for each round: with what probability
/// does each data qubit flip, and with what probability is each syndrome
/// readout wrong.
pub trait NoiseModel {
    /// Probability that a given data qubit suffers an X flip in one round.
    fn data_error_rate(&self) -> f64;

    /// Probability that a given syndrome measurement is misread in one round.
    fn measurement_error_rate(&self) -> f64;

    /// Samples whether a single data qubit flips this round.
    fn sample_data_flip<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen_bool(self.data_error_rate())
    }

    /// Samples whether a single measurement is misread this round.
    fn sample_measurement_flip<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen_bool(self.measurement_error_rate())
    }
}

/// Phenomenological noise: data flips with probability `p` *and* measurement
/// flips with probability `q` per round.
///
/// # Example
///
/// ```
/// use qecool_surface_code::{NoiseModel, PhenomenologicalNoise};
///
/// let noise = PhenomenologicalNoise::symmetric(0.01);
/// assert_eq!(noise.data_error_rate(), 0.01);
/// assert_eq!(noise.measurement_error_rate(), 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhenomenologicalNoise {
    p: f64,
    q: f64,
}

impl PhenomenologicalNoise {
    /// Creates a model with independent data (`p`) and measurement (`q`)
    /// error rates.
    ///
    /// # Panics
    ///
    /// Panics unless both rates lie in `[0, 1]`.
    pub fn new(p: f64, q: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "data error rate out of [0,1]");
        assert!(
            (0.0..=1.0).contains(&q),
            "measurement error rate out of [0,1]"
        );
        Self { p, q }
    }

    /// The paper's setting: equal data and measurement error rates.
    ///
    /// # Panics
    ///
    /// Panics unless `p` lies in `[0, 1]`.
    pub fn symmetric(p: f64) -> Self {
        Self::new(p, p)
    }
}

impl NoiseModel for PhenomenologicalNoise {
    fn data_error_rate(&self) -> f64 {
        self.p
    }

    fn measurement_error_rate(&self) -> f64 {
        self.q
    }
}

/// Code-capacity noise: data flips with probability `p`, measurements are
/// perfect. Used for "2-D" (single-layer) threshold experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeCapacityNoise {
    p: f64,
}

impl CodeCapacityNoise {
    /// Creates a code-capacity model with data error rate `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` lies in `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "data error rate out of [0,1]");
        Self { p }
    }
}

impl NoiseModel for CodeCapacityNoise {
    fn data_error_rate(&self) -> f64 {
        self.p
    }

    fn measurement_error_rate(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn symmetric_sets_both_rates() {
        let n = PhenomenologicalNoise::symmetric(0.02);
        assert_eq!(n.data_error_rate(), 0.02);
        assert_eq!(n.measurement_error_rate(), 0.02);
    }

    #[test]
    fn asymmetric_rates_are_independent() {
        let n = PhenomenologicalNoise::new(0.01, 0.05);
        assert_eq!(n.data_error_rate(), 0.01);
        assert_eq!(n.measurement_error_rate(), 0.05);
    }

    #[test]
    fn code_capacity_has_perfect_measurement() {
        let n = CodeCapacityNoise::new(0.1);
        assert_eq!(n.data_error_rate(), 0.1);
        assert_eq!(n.measurement_error_rate(), 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!n.sample_measurement_flip(&mut rng));
        }
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn rejects_invalid_rate() {
        PhenomenologicalNoise::symmetric(1.5);
    }

    #[test]
    fn sample_statistics_are_plausible() {
        // 10k samples at p = 0.3: expect ~3000 hits; allow a wide band.
        let n = PhenomenologicalNoise::symmetric(0.3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| n.sample_data_flip(&mut rng)).count();
        assert!((2500..3500).contains(&hits), "got {hits} hits");
    }

    #[test]
    fn zero_rate_never_fires() {
        let n = PhenomenologicalNoise::symmetric(0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        assert!((0..1000).all(|_| !n.sample_data_flip(&mut rng)));
    }

    #[test]
    fn unit_rate_always_fires() {
        let n = PhenomenologicalNoise::symmetric(1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        assert!((0..1000).all(|_| n.sample_data_flip(&mut rng)));
    }
}
