//! The union-find decoder: cluster growth + peeling.
//!
//! Algorithm (Delfosse–Nickerson):
//!
//! 1. **Syndrome validation / growth** — every detection event starts a
//!    singleton cluster. All *active* clusters (odd defect parity, no
//!    boundary contact) grow by a half-edge per step; edges whose support
//!    reaches 2 merge their endpoint clusters. Growth stops when every
//!    cluster is neutral (even parity or boundary-touching).
//! 2. **Peeling** — the fully-grown edges form an *erasure*; a spanning
//!    forest of the erasure (rooted at boundary nodes where available) is
//!    peeled leaf-first: a leaf carrying a defect emits its tree edge as
//!    part of the correction and hands the defect to its parent.
//!
//! Spatial tree edges emit data-qubit corrections (XOR-accumulated per
//! qubit across rounds); temporal edges absorb measurement errors.

use crate::dsu::ClusterSets;
use crate::graph::{DecodingGraph, GraphEdgeKind};
use qecool_surface_code::{CodePatch, Edge, Lattice, SyndromeHistory};

/// Result of one union-find decode.
#[derive(Debug, Clone, Default)]
pub struct UfOutcome {
    /// Data-qubit corrections (already XOR-reduced per qubit).
    pub corrections: Vec<Edge>,
    /// Growth iterations until all clusters neutralized.
    pub growth_steps: usize,
    /// Number of fully-grown (erasure) edges handed to the peeler.
    pub erasure_edges: usize,
}

impl UfOutcome {
    /// Applies the corrections to a code patch.
    pub fn apply(&self, patch: &mut CodePatch) {
        patch.apply_corrections(self.corrections.iter().copied());
    }
}

/// One erasure component of a union-find decode.
///
/// Components are disjoint: every detection event is peeled by exactly
/// one component, and XOR-composing all component corrections
/// reproduces the monolithic [`UfOutcome::corrections`]. Sliding-window
/// callers use the per-component granularity to decide which matches to
/// *commit* (a component whose earliest defect round falls inside the
/// commit stride) and which to leave tentative for the next window.
#[derive(Debug, Clone, Default)]
pub struct UfComponent {
    /// Data-qubit corrections contributed by this component
    /// (XOR-reduced within the component, sorted by qubit index).
    pub corrections: Vec<Edge>,
    /// Detection events `(ancilla_index, round)` this component
    /// explains, in deterministic BFS discovery order. Never empty.
    pub defects: Vec<(usize, usize)>,
}

impl UfComponent {
    /// The earliest round any of this component's defects occurred in.
    pub fn min_round(&self) -> usize {
        self.defects
            .iter()
            .map(|&(_, t)| t)
            .min()
            .expect("a UfComponent always holds at least one defect")
    }
}

/// Result of a per-component union-find decode
/// ([`UnionFindDecoder::decode_components`]).
#[derive(Debug, Clone, Default)]
pub struct UfComponentOutcome {
    /// The disjoint erasure components, in deterministic peel order.
    pub components: Vec<UfComponent>,
    /// Growth iterations until all clusters neutralized.
    pub growth_steps: usize,
    /// Number of fully-grown (erasure) edges handed to the peeler.
    pub erasure_edges: usize,
}

/// Union-find decoder over a [`SyndromeHistory`] (batch decoding).
///
/// # Example
///
/// ```
/// use qecool_surface_code::{CodePatch, Lattice, SyndromeHistory};
/// use qecool_uf::UnionFindDecoder;
///
/// # fn main() -> Result<(), qecool_surface_code::LatticeError> {
/// let lattice = Lattice::new(5)?;
/// let mut patch = CodePatch::new(lattice.clone());
/// patch.inject_error(lattice.horizontal_edge(2, 2));
/// let mut history = SyndromeHistory::new(lattice.clone());
/// history.push(patch.perfect_round());
///
/// let outcome = UnionFindDecoder::new(lattice).decode(&history);
/// outcome.apply(&mut patch);
/// assert!(patch.syndrome_is_trivial());
/// assert!(!patch.has_logical_error());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct UnionFindDecoder {
    lattice: Lattice,
}

impl UnionFindDecoder {
    /// Creates a decoder for the given lattice.
    pub fn new(lattice: Lattice) -> Self {
        Self { lattice }
    }

    /// The lattice this decoder was built for.
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// Decodes a full syndrome history.
    ///
    /// Equivalent to XOR-composing the corrections of every component
    /// returned by [`Self::decode_components`].
    ///
    /// # Panics
    ///
    /// Panics if the history is empty or belongs to a different lattice
    /// size.
    pub fn decode(&self, history: &SyndromeHistory) -> UfOutcome {
        let parts = self.decode_components(history);
        let mut qubit_parity = vec![false; self.lattice.num_data_qubits()];
        for comp in &parts.components {
            for e in &comp.corrections {
                qubit_parity[e.index()] ^= true;
            }
        }
        let corrections: Vec<Edge> = qubit_parity
            .iter()
            .enumerate()
            .filter_map(|(q, &on)| on.then_some(Edge(q)))
            .collect();
        UfOutcome {
            corrections,
            growth_steps: parts.growth_steps,
            erasure_edges: parts.erasure_edges,
        }
    }

    /// Decodes a full syndrome history, keeping the erasure components
    /// separate.
    ///
    /// Each returned component holds the detection events it explains
    /// and the corrections it contributes; components are disjoint, so
    /// a sliding-window caller can commit some components (emitting
    /// their corrections and clearing their defect events from the
    /// buffered rounds) while discarding others as tentative.
    ///
    /// # Panics
    ///
    /// Panics if the history is empty or belongs to a different lattice
    /// size.
    pub fn decode_components(&self, history: &SyndromeHistory) -> UfComponentOutcome {
        assert_eq!(
            history.lattice().num_ancillas(),
            self.lattice.num_ancillas(),
            "history lattice does not match decoder lattice"
        );
        let num_ancillas = self.lattice.num_ancillas();
        let graph = DecodingGraph::new(&self.lattice, history.num_rounds());
        let n = graph.num_nodes();

        // Defects and cluster bookkeeping.
        let mut defect = vec![false; n];
        let mut sets = ClusterSets::new(n);
        for (t, round) in history.iter().enumerate() {
            for idx in round.events().iter_ones() {
                let node = graph.cell(idx, t);
                defect[node] = true;
                sets.set_defect(node);
            }
        }
        for node in 0..n {
            if graph.is_boundary(node) {
                sets.set_boundary(node);
            }
        }
        let defects: Vec<usize> = (0..n).filter(|&v| defect[v]).collect();
        if defects.is_empty() {
            return UfComponentOutcome::default();
        }

        // Phase 1: grow active clusters until neutral.
        let mut support = vec![0u8; graph.edges().len()];
        let mut growth_steps = 0;
        loop {
            if !defects.iter().any(|&v| sets.is_active(v)) {
                break;
            }
            growth_steps += 1;
            let mut fused: Vec<usize> = Vec::new();
            for (i, e) in graph.edges().iter().enumerate() {
                if support[i] >= 2 {
                    continue;
                }
                let inc =
                    u8::from(sets.is_active(e.u as usize)) + u8::from(sets.is_active(e.v as usize));
                if inc == 0 {
                    continue;
                }
                support[i] = (support[i] + inc).min(2);
                if support[i] == 2 {
                    fused.push(i);
                }
            }
            assert!(
                !fused.is_empty() || growth_steps < 2 * graph.num_nodes(),
                "union-find growth stalled"
            );
            for i in fused {
                let e = graph.edges()[i];
                sets.union(e.u as usize, e.v as usize);
            }
        }

        // Phase 2: peel the erasure.
        let erasure: Vec<usize> = (0..support.len()).filter(|&i| support[i] == 2).collect();
        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for &i in &erasure {
            let e = graph.edges()[i];
            adj[e.u as usize].push((e.v, i as u32));
            adj[e.v as usize].push((e.u, i as u32));
        }

        let mut visited = vec![false; n];
        let mut components: Vec<UfComponent> = Vec::new();
        // Roots: boundary nodes first so defects can drain into them.
        let boundary_roots = (0..n).filter(|&v| graph.is_boundary(v));
        let all_roots: Vec<usize> = boundary_roots.chain(0..n).collect();
        for root in all_roots {
            if visited[root] || adj[root].is_empty() {
                continue;
            }
            // BFS spanning tree of this erasure component.
            let mut order: Vec<usize> = vec![root];
            let mut parent_edge: Vec<Option<(usize, u32)>> = vec![None; n];
            visited[root] = true;
            let mut head = 0;
            while head < order.len() {
                let v = order[head];
                head += 1;
                for &(w, ei) in &adj[v] {
                    let w = w as usize;
                    if !visited[w] {
                        visited[w] = true;
                        parent_edge[w] = Some((v, ei));
                        order.push(w);
                    }
                }
            }
            // The detection events this component explains, in BFS
            // discovery order (boundary stubs never carry defects).
            let comp_defects: Vec<(usize, usize)> = order
                .iter()
                .filter(|&&v| defect[v])
                .map(|&v| (v % num_ancillas, v / num_ancillas))
                .collect();
            // Peel leaf-first (reverse BFS order).
            let mut qubit_parity = vec![false; self.lattice.num_data_qubits()];
            let mut carry = defect.clone();
            for &v in order.iter().skip(1).rev() {
                if carry[v] {
                    let (p, ei) = parent_edge[v].expect("non-root has a parent");
                    carry[v] = false;
                    carry[p] = !carry[p];
                    if let GraphEdgeKind::Data(q) = graph.edges()[ei as usize].kind {
                        qubit_parity[q.index()] ^= true;
                    }
                }
            }
            // Defects drained into this component's root must end on a
            // boundary (or cancel) — otherwise the cluster was not neutral.
            assert!(
                !carry[root] || graph.is_boundary(root),
                "peeling left a defect on a non-boundary root"
            );
            // Components are disjoint; clear the processed nodes so the
            // trailing debug_assert can certify full coverage.
            for &v in &order {
                defect[v] = false;
            }
            // Defect-free components contribute no corrections (nothing
            // to carry) — keep only those that explain real events.
            if !comp_defects.is_empty() {
                let corrections: Vec<Edge> = qubit_parity
                    .iter()
                    .enumerate()
                    .filter_map(|(q, &on)| on.then_some(Edge(q)))
                    .collect();
                components.push(UfComponent {
                    corrections,
                    defects: comp_defects,
                });
            }
        }
        debug_assert!(
            defect.iter().all(|&d| !d),
            "some defect was outside every erasure component"
        );

        UfComponentOutcome {
            components,
            growth_steps,
            erasure_edges: erasure.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qecool_surface_code::{Ancilla, PhenomenologicalNoise};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn single_round(patch: &mut CodePatch) -> SyndromeHistory {
        let mut h = SyndromeHistory::new(patch.lattice().clone());
        h.push(patch.perfect_round());
        h
    }

    #[test]
    fn empty_syndrome_decodes_to_nothing() {
        let lat = Lattice::new(5).unwrap();
        let mut patch = CodePatch::new(lat.clone());
        let h = single_round(&mut patch);
        let out = UnionFindDecoder::new(lat).decode(&h);
        assert!(out.corrections.is_empty());
        assert_eq!(out.growth_steps, 0);
        assert_eq!(out.erasure_edges, 0);
    }

    #[test]
    fn corrects_every_single_qubit_error() {
        let lat = Lattice::new(5).unwrap();
        let decoder = UnionFindDecoder::new(lat.clone());
        for q in 0..lat.num_data_qubits() {
            let mut patch = CodePatch::new(lat.clone());
            patch.inject_error(Edge(q));
            let h = single_round(&mut patch);
            let out = decoder.decode(&h);
            out.apply(&mut patch);
            assert!(patch.syndrome_is_trivial(), "qubit {q}");
            assert!(!patch.has_logical_error(), "qubit {q}");
        }
    }

    #[test]
    fn corrects_pure_measurement_error() {
        let lat = Lattice::new(5).unwrap();
        let mut patch = CodePatch::new(lat.clone());
        let idx = lat.ancilla_index(Ancilla::new(2, 1));
        let mut h = SyndromeHistory::new(lat.clone());
        let mut r0 = patch.perfect_round().into_inner();
        r0.toggle(idx);
        h.push(qecool_surface_code::DetectionRound::new(r0));
        let mut r1 = patch.perfect_round().into_inner();
        r1.toggle(idx);
        h.push(qecool_surface_code::DetectionRound::new(r1));
        let out = UnionFindDecoder::new(lat).decode(&h);
        assert!(
            out.corrections.is_empty(),
            "measurement error must not touch data: {out:?}"
        );
    }

    #[test]
    fn always_clears_syndrome_under_noise() {
        let lat = Lattice::new(9).unwrap();
        let noise = PhenomenologicalNoise::symmetric(0.04);
        let decoder = UnionFindDecoder::new(lat.clone());
        for seed in 0..40u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut patch = CodePatch::new(lat.clone());
            let mut h = SyndromeHistory::new(lat.clone());
            for _ in 0..9 {
                h.push(patch.noisy_round(&noise, &mut rng));
            }
            h.push(patch.perfect_round());
            let out = decoder.decode(&h);
            out.apply(&mut patch);
            assert!(patch.syndrome_is_trivial(), "seed {seed}");
        }
    }

    #[test]
    fn agrees_with_mwpm_on_sparse_errors() {
        // On isolated weight-1 and weight-2 errors, UF and MWPM decode to
        // the same homology class.
        let lat = Lattice::new(7).unwrap();
        let uf = UnionFindDecoder::new(lat.clone());
        let mwpm = qecool_mwpm::MwpmDecoder::new(lat.clone());
        for (q1, q2) in [(10usize, 11usize), (3, 20), (40, 41), (0, 60)] {
            let mut patch = CodePatch::new(lat.clone());
            patch.inject_error(Edge(q1 % lat.num_data_qubits()));
            patch.inject_error(Edge(q2 % lat.num_data_qubits()));
            let h = single_round(&mut patch);
            let mut p1 = patch.clone();
            uf.decode(&h).apply(&mut p1);
            let mut p2 = patch.clone();
            mwpm.decode(&h).unwrap().apply(&mut p2);
            assert!(p1.syndrome_is_trivial() && p2.syndrome_is_trivial());
            assert_eq!(
                p1.has_logical_error(),
                p2.has_logical_error(),
                "UF and MWPM disagree on ({q1},{q2})"
            );
        }
    }

    #[test]
    fn components_compose_to_the_monolithic_decode() {
        let lat = Lattice::new(9).unwrap();
        let noise = PhenomenologicalNoise::symmetric(0.04);
        let decoder = UnionFindDecoder::new(lat.clone());
        for seed in 0..20u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut patch = CodePatch::new(lat.clone());
            let mut h = SyndromeHistory::new(lat.clone());
            for _ in 0..9 {
                h.push(patch.noisy_round(&noise, &mut rng));
            }
            h.push(patch.perfect_round());

            let mono = decoder.decode(&h);
            let parts = decoder.decode_components(&h);
            assert_eq!(parts.growth_steps, mono.growth_steps);
            assert_eq!(parts.erasure_edges, mono.erasure_edges);

            // XOR-composing per-component corrections reproduces the
            // monolithic correction exactly.
            let mut parity = vec![false; lat.num_data_qubits()];
            for comp in &parts.components {
                assert!(!comp.defects.is_empty());
                assert!(comp.defects.iter().any(|&(_, t)| t == comp.min_round()));
                for e in &comp.corrections {
                    parity[e.index()] ^= true;
                }
            }
            let composed: Vec<Edge> = parity
                .iter()
                .enumerate()
                .filter_map(|(q, &on)| on.then_some(Edge(q)))
                .collect();
            assert_eq!(composed, mono.corrections, "seed {seed}");

            // Components partition the events: every detection event is
            // explained exactly once.
            let mut seen: Vec<(usize, usize)> = parts
                .components
                .iter()
                .flat_map(|c| c.defects.iter().copied())
                .collect();
            seen.sort_unstable_by_key(|&(a, t)| (t, a));
            let events: Vec<(usize, usize)> = h
                .events()
                .iter()
                .map(|ev| (lat.ancilla_index(ev.ancilla), ev.round))
                .collect();
            assert_eq!(seen, events, "seed {seed}");
        }
    }

    #[test]
    fn growth_steps_scale_with_separation() {
        // Two far-apart events need more growth than two adjacent ones.
        let lat = Lattice::new(9).unwrap();
        let near = {
            let mut patch = CodePatch::new(lat.clone());
            patch.inject_error(lat.horizontal_edge(4, 4));
            let h = single_round(&mut patch);
            UnionFindDecoder::new(lat.clone()).decode(&h).growth_steps
        };
        let far = {
            let mut patch = CodePatch::new(lat.clone());
            let a = Ancilla::new(0, 4);
            let b = Ancilla::new(8, 4);
            for e in lat.route(a, b) {
                patch.inject_error(e);
            }
            let h = single_round(&mut patch);
            UnionFindDecoder::new(lat.clone()).decode(&h).growth_steps
        };
        assert!(far > near, "far {far} vs near {near}");
    }
}
