//! Disjoint-set union with the cluster metadata the union-find decoder
//! tracks: defect parity and boundary contact.

/// Union-find over `n` elements with union-by-size and path compression,
/// carrying per-cluster defect parity and a touches-boundary flag.
#[derive(Debug, Clone)]
pub struct ClusterSets {
    parent: Vec<u32>,
    size: Vec<u32>,
    /// Defect parity of the cluster rooted here (valid at roots).
    odd: Vec<bool>,
    /// Whether the cluster contains a boundary node (valid at roots).
    boundary: Vec<bool>,
}

impl ClusterSets {
    /// Creates `n` singleton clusters. Mark defects and boundary nodes
    /// with [`Self::set_defect`] / [`Self::set_boundary`] before growing.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            odd: vec![false; n],
            boundary: vec![false; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Marks element `x` as a defect (flips its singleton parity).
    ///
    /// # Panics
    ///
    /// Panics if called after unions began and `x` is no longer a root.
    pub fn set_defect(&mut self, x: usize) {
        assert_eq!(self.parent[x] as usize, x, "set_defect after unions");
        self.odd[x] = !self.odd[x];
    }

    /// Marks element `x` as a boundary node.
    ///
    /// # Panics
    ///
    /// Panics if called after unions began and `x` is no longer a root.
    pub fn set_boundary(&mut self, x: usize) {
        assert_eq!(self.parent[x] as usize, x, "set_boundary after unions");
        self.boundary[x] = true;
    }

    /// Root of `x`'s cluster (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merges the clusters of `a` and `b`; returns the new root.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        let parity = self.odd[big] ^ self.odd[small];
        self.odd[big] = parity;
        self.boundary[big] |= self.boundary[small];
        big
    }

    /// Whether `x`'s cluster still needs to grow: odd defect parity and no
    /// boundary contact.
    pub fn is_active(&mut self, x: usize) -> bool {
        let r = self.find(x);
        self.odd[r] && !self.boundary[r]
    }

    /// Defect parity of `x`'s cluster.
    pub fn parity(&mut self, x: usize) -> bool {
        let r = self.find(x);
        self.odd[r]
    }

    /// Boundary contact of `x`'s cluster.
    pub fn touches_boundary(&mut self, x: usize) -> bool {
        let r = self.find(x);
        self.boundary[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_inactive() {
        let mut s = ClusterSets::new(4);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        for i in 0..4 {
            assert!(!s.is_active(i));
        }
    }

    #[test]
    fn defect_makes_cluster_active() {
        let mut s = ClusterSets::new(4);
        s.set_defect(2);
        assert!(s.is_active(2));
        assert!(!s.is_active(1));
    }

    #[test]
    fn pairing_two_defects_neutralizes() {
        let mut s = ClusterSets::new(4);
        s.set_defect(0);
        s.set_defect(1);
        s.union(0, 1);
        assert!(!s.is_active(0));
        assert!(!s.parity(1));
    }

    #[test]
    fn boundary_contact_deactivates() {
        let mut s = ClusterSets::new(4);
        s.set_defect(0);
        s.set_boundary(3);
        s.union(0, 3);
        assert!(s.parity(0), "parity stays odd");
        assert!(s.touches_boundary(0));
        assert!(!s.is_active(0), "boundary clusters stop growing");
    }

    #[test]
    fn union_find_invariants() {
        let mut s = ClusterSets::new(10);
        for i in 0..9 {
            s.union(i, i + 1);
        }
        let root = s.find(0);
        for i in 1..10 {
            assert_eq!(s.find(i), root);
        }
    }

    #[test]
    fn triple_defect_cluster_stays_odd() {
        let mut s = ClusterSets::new(5);
        for i in 0..3 {
            s.set_defect(i);
        }
        s.union(0, 1);
        s.union(1, 2);
        assert!(s.parity(0));
        assert!(s.is_active(2));
    }
}
