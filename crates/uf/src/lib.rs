//! Union-find surface-code decoder (Delfosse–Nickerson) — the
//! almost-linear-time baseline the QECOOL paper surveys in Table IV
//! (\[3\], hardware architecture by Das et al. \[2\]).
//!
//! The decoder grows clusters around detection events on the 3-D
//! (space × time) decoding graph until every cluster has even defect
//! parity or touches an open boundary, then peels a spanning forest of
//! the grown *erasure* to extract the correction. Its threshold sits just
//! below MWPM's (literature: 2.6% vs 2.9% phenomenological) at a fraction
//! of the computational cost — which is why the paper lists it as the
//! FPGA-class contender against which cryogenic decoders are judged.
//!
//! * [`graph`] — the decoding graph (spatial/temporal/boundary edges);
//! * [`dsu`] — union-find with defect-parity and boundary bookkeeping;
//! * [`decoder`] — growth + peeling and correction extraction.
//!
//! # Example
//!
//! ```
//! use qecool_surface_code::{CodePatch, Lattice, SyndromeHistory};
//! use qecool_uf::UnionFindDecoder;
//!
//! # fn main() -> Result<(), qecool_surface_code::LatticeError> {
//! let lattice = Lattice::new(3)?;
//! let mut patch = CodePatch::new(lattice.clone());
//! patch.inject_error(lattice.vertical_edge(0, 1));
//! let mut history = SyndromeHistory::new(lattice.clone());
//! history.push(patch.perfect_round());
//!
//! let outcome = UnionFindDecoder::new(lattice).decode(&history);
//! outcome.apply(&mut patch);
//! assert!(patch.syndrome_is_trivial());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod decoder;
pub mod dsu;
pub mod graph;

pub use decoder::{UfComponent, UfComponentOutcome, UfOutcome, UnionFindDecoder};
pub use graph::{DecodingGraph, GraphEdge, GraphEdgeKind};
