//! The 3-D decoding graph the union-find decoder grows clusters on.
//!
//! Nodes are detection cells `(ancilla, round)` for every round of the
//! observation window, plus one *distinct* virtual boundary node per
//! boundary-adjacent horizontal edge per round (keeping west and east
//! boundaries homologically separate — collapsing them into one node
//! would let peeling route a correction "through" the boundary and flip
//! the logical class silently).
//!
//! Edges carry the physical meaning needed to turn a peeled erasure into
//! a correction:
//!
//! * **spatial** edges — one per data qubit per round; peeling one emits
//!   that data-qubit correction;
//! * **temporal** edges — same ancilla, adjacent rounds; peeling one
//!   asserts a measurement error, no data correction.

use qecool_surface_code::{Edge, Lattice};

/// Physical meaning of one decoding-graph edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphEdgeKind {
    /// An X error on a data qubit (correctable).
    Data(Edge),
    /// A syndrome measurement error (nothing to correct on data).
    Measurement,
}

/// One undirected decoding-graph edge.
#[derive(Debug, Clone, Copy)]
pub struct GraphEdge {
    /// First endpoint (node index).
    pub u: u32,
    /// Second endpoint (node index).
    pub v: u32,
    /// Physical meaning.
    pub kind: GraphEdgeKind,
}

/// The decoding graph for a lattice and a window of `rounds` layers.
#[derive(Debug, Clone)]
pub struct DecodingGraph {
    rounds: usize,
    num_ancillas: usize,
    num_nodes: usize,
    first_boundary_node: usize,
    edges: Vec<GraphEdge>,
    /// Incident edge indices per node.
    incident: Vec<Vec<u32>>,
}

impl DecodingGraph {
    /// Builds the graph for `rounds` measurement layers on `lattice`.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn new(lattice: &Lattice, rounds: usize) -> Self {
        assert!(rounds > 0, "need at least one measurement round");
        let na = lattice.num_ancillas();
        let cell_nodes = na * rounds;
        let mut edges: Vec<GraphEdge> = Vec::new();
        let mut next_boundary = cell_nodes;

        for t in 0..rounds {
            let base = t * na;
            // Spatial edges: every data qubit of the round.
            for q in 0..lattice.num_data_qubits() {
                let e = Edge(q);
                let (a, b) = lattice.endpoints(e);
                let u = (base + lattice.ancilla_index(a)) as u32;
                match b {
                    Some(b) => {
                        let v = (base + lattice.ancilla_index(b)) as u32;
                        edges.push(GraphEdge {
                            u,
                            v,
                            kind: GraphEdgeKind::Data(e),
                        });
                    }
                    None => {
                        // Boundary edge: a fresh virtual node keeps each
                        // boundary stub distinct.
                        let v = next_boundary as u32;
                        next_boundary += 1;
                        edges.push(GraphEdge {
                            u,
                            v,
                            kind: GraphEdgeKind::Data(e),
                        });
                    }
                }
            }
            // Temporal edges to the next round.
            if t + 1 < rounds {
                for a in 0..na {
                    edges.push(GraphEdge {
                        u: (base + a) as u32,
                        v: (base + na + a) as u32,
                        kind: GraphEdgeKind::Measurement,
                    });
                }
            }
        }

        let num_nodes = next_boundary;
        let mut incident = vec![Vec::new(); num_nodes];
        for (i, e) in edges.iter().enumerate() {
            incident[e.u as usize].push(i as u32);
            incident[e.v as usize].push(i as u32);
        }
        Self {
            rounds,
            num_ancillas: na,
            num_nodes,
            first_boundary_node: cell_nodes,
            edges,
            incident,
        }
    }

    /// Number of measurement rounds covered.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Total node count (cells + virtual boundary nodes).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[GraphEdge] {
        &self.edges
    }

    /// Edge indices incident to `node`.
    pub fn incident(&self, node: usize) -> &[u32] {
        &self.incident[node]
    }

    /// Node index of detection cell `(ancilla_index, round)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn cell(&self, ancilla_index: usize, round: usize) -> usize {
        assert!(ancilla_index < self.num_ancillas && round < self.rounds);
        round * self.num_ancillas + ancilla_index
    }

    /// `true` for virtual boundary nodes.
    pub fn is_boundary(&self, node: usize) -> bool {
        node >= self.first_boundary_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_consistent() {
        let lat = Lattice::new(5).unwrap();
        let g = DecodingGraph::new(&lat, 3);
        let na = lat.num_ancillas();
        // Boundary stubs: 2 per row per round.
        let boundary = 2 * lat.rows() * 3;
        assert_eq!(g.num_nodes(), na * 3 + boundary);
        // Edges: data qubits per round + temporal links.
        assert_eq!(g.edges().len(), lat.num_data_qubits() * 3 + na * 2);
        assert_eq!(g.rounds(), 3);
    }

    #[test]
    fn cell_indexing_is_dense() {
        let lat = Lattice::new(3).unwrap();
        let g = DecodingGraph::new(&lat, 2);
        let na = lat.num_ancillas();
        for t in 0..2 {
            for a in 0..na {
                let n = g.cell(a, t);
                assert!(!g.is_boundary(n));
                assert_eq!(n, t * na + a);
            }
        }
    }

    #[test]
    fn boundary_nodes_have_single_incident_edge() {
        let lat = Lattice::new(5).unwrap();
        let g = DecodingGraph::new(&lat, 2);
        for n in 0..g.num_nodes() {
            if g.is_boundary(n) {
                assert_eq!(g.incident(n).len(), 1, "boundary node {n}");
            }
        }
    }

    #[test]
    fn interior_cell_degree_matches_geometry() {
        // An interior ancilla in a middle round touches 4 spatial + 2
        // temporal edges.
        let lat = Lattice::new(5).unwrap();
        let g = DecodingGraph::new(&lat, 3);
        let a = lat.ancilla_index(qecool_surface_code::Ancilla::new(2, 1));
        assert_eq!(g.incident(g.cell(a, 1)).len(), 4 + 2);
        // First-round cell: 4 spatial + 1 temporal.
        assert_eq!(g.incident(g.cell(a, 0)).len(), 4 + 1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_rounds_rejected() {
        let lat = Lattice::new(3).unwrap();
        DecodingGraph::new(&lat, 0);
    }
}
