//! Collection strategies (`proptest::collection::vec`).

use rand::{Rng, RngCore};

use crate::Strategy;

/// Admissible element counts for [`vec()`]: built from a `usize` (exact
/// length) or a `Range<usize>` (half-open).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        Self {
            lo: len,
            hi_exclusive: len + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        Self {
            lo: range.start,
            hi_exclusive: range.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: core::ops::RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        Self {
            lo: *range.start(),
            hi_exclusive: *range.end() + 1,
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S` (see [`vec()`]).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Vectors whose length lies in `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
