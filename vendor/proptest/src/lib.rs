//! Offline mini property-testing harness covering the slice of the
//! `proptest` API this workspace uses: the [`proptest!`] macro with
//! `pattern in strategy` arguments, `prop_assert*` macros, [`any`],
//! integer-range strategies, [`Just`], [`prop_oneof!`] and
//! [`collection::vec`].
//!
//! Semantics are simplified relative to upstream: cases are drawn from a
//! deterministic per-test seed (derived from the test name) and failures
//! are plain panics — there is no shrinking. That keeps seeded CI runs
//! reproducible without any registry access.

#![deny(missing_docs)]

use std::marker::PhantomData;

use rand::{Rng, RngCore, SeedableRng};

pub mod collection;

/// Everything a `proptest!` test body needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, OneOf,
        ProptestConfig, Strategy,
    };
}

/// Per-block configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the seeded CI suite fast
        // while still exercising the property.
        Self { cases: 64 }
    }
}

/// The generator driving case sampling.
pub type TestRng = rand::rngs::StdRng;

/// Creates the deterministic generator for one named test.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value;
}

/// Marker returned by [`any`]; strategies exist per supported type.
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (`any::<u64>()`, `any::<bool>()`, ...).
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_any_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Strategy producing one fixed value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample<R: RngCore + ?Sized>(&self, _rng: &mut R) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies (built by [`prop_oneof!`]).
pub struct OneOf<S>(Vec<S>);

impl<S> OneOf<S> {
    /// Wraps a non-empty list of alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self(options)
    }
}

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;

    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].sample(rng)
    }
}

/// Uniform choice among strategies (`prop_oneof![Just(3), Just(5)]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($option),+])
    };
}

/// Property assertion; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion; panics on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion; panics on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: `#[test] fn name(x in strategy, ...) { body }`
/// items, optionally preceded by `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            use $crate::Strategy as _;
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = ($strategy).sample(&mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn oneof_only_yields_members() {
        let strategy = prop_oneof![Just(3usize), Just(5), Just(7)];
        let mut rng = crate::test_rng("oneof");
        for _ in 0..100 {
            assert!([3, 5, 7].contains(&strategy.sample(&mut rng)));
        }
    }

    #[test]
    fn vec_respects_size_bounds() {
        let strategy = crate::collection::vec(any::<bool>(), 2..5);
        let mut rng = crate::test_rng("vecsize");
        for _ in 0..100 {
            let v = strategy.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn exact_vec_size() {
        let strategy = crate::collection::vec(any::<u64>(), 3);
        let mut rng = crate::test_rng("vecexact");
        assert_eq!(strategy.sample(&mut rng).len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires patterns, strategies and config together.
        #[test]
        fn macro_end_to_end(x in 1usize..10, flip in any::<bool>()) {
            prop_assert!((1..10).contains(&x));
            let bit = usize::from(flip);
            prop_assert!(bit <= 1);
            prop_assert_ne!(x, 0);
        }
    }
}
