//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! poison-free [`Mutex`], [`RwLock`] and [`Condvar`] wrappers over
//! `std::sync`.

#![deny(missing_docs)]

use std::sync::PoisonError;
use std::time::Duration;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that, like `parking_lot`'s, does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that, like `parking_lot`'s, does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable that, like the mutexes here, never poisons.
///
/// One deviation from the real `parking_lot` API: `wait` takes the guard
/// by value and hands it back (the `std::sync` calling convention)
/// instead of through `&mut`, because the guard type is a re-export of
/// `std::sync::MutexGuard` and cannot be re-seated in place without
/// `unsafe`. Call sites read `guard = cv.wait(guard)`.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the mutex while parked.
    /// Spurious wakeups are possible — re-check the predicate.
    #[must_use = "the guard must be re-seated: guard = cv.wait(guard)"]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until `condition` returns `false` (the `std` convention:
    /// waits *while* the condition holds).
    #[must_use = "the guard must be re-seated: guard = cv.wait_while(guard, ...)"]
    pub fn wait_while<'a, T, F: FnMut(&mut T) -> bool>(
        &self,
        guard: MutexGuard<'a, T>,
        condition: F,
    ) -> MutexGuard<'a, T> {
        self.0
            .wait_while(guard, condition)
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until notified or `timeout` elapses; returns the guard and
    /// `true` when the wait timed out.
    #[must_use = "the guard must be re-seated"]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, result) = self
            .0
            .wait_timeout(guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        (guard, result.timed_out())
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_handshake() {
        use std::sync::Arc;

        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let worker = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                *lock.lock() = true;
                cv.notify_one();
            })
        };
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            ready = cv.wait(ready);
        }
        assert!(*ready);
        worker.join().unwrap();
    }

    #[test]
    fn condvar_wait_while_and_timeout() {
        let m = Mutex::new(3u32);
        let cv = Condvar::new();
        // Condition is already false: returns immediately.
        let guard = cv.wait_while(m.lock(), |v| *v > 10);
        assert_eq!(*guard, 3);
        drop(guard);
        let (guard, timed_out) = cv.wait_timeout(m.lock(), Duration::from_millis(1));
        assert!(timed_out);
        assert_eq!(*guard, 3);
    }
}
