//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! poison-free [`Mutex`] and [`RwLock`] wrappers over `std::sync`.

#![deny(missing_docs)]

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that, like `parking_lot`'s, does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that, like `parking_lot`'s, does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
