//! No-op derive macros standing in for `serde_derive` while the build has
//! no registry access. The workspace currently derives `Serialize` /
//! `Deserialize` for forward compatibility but never serializes, so
//! expanding to nothing is sound. Swap back to real serde to get wire
//! formats.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
