//! Offline facade for `serde`: re-exports the no-op derive macros so
//! `use serde::{Deserialize, Serialize}` and `#[derive(...)]` compile
//! without registry access. No serialization actually happens until the
//! real crate is restored.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};
