//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream generator
//! implementing the vendored [`rand`] traits.
//!
//! The block function is the genuine ChaCha construction (IETF constants,
//! 8 rounds), so the stream has ChaCha's statistical quality; only
//! word-consumption order relative to upstream `rand_chacha` is
//! unspecified, which the workspace does not rely on.

#![deny(missing_docs)]

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means the buffer is exhausted.
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14-15 (the nonce) stay zero: one stream per key.
        let input = state;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buf.iter_mut().zip(state.iter().zip(&input)) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let word = self.buf[self.idx];
        self.idx += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(0);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let same = (0..256).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_key_block_is_mixed() {
        // The keystream of the all-zero key must not be the identity state.
        let mut rng = ChaCha8Rng::from_seed([0; 32]);
        let words: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(words[..4], CHACHA_CONSTANTS);
        assert!(words.iter().any(|&w| w != 0));
    }

    #[test]
    fn bit_balance_is_plausible() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let ones: u32 = (0..1024).map(|_| rng.next_u64().count_ones()).sum();
        // 65536 bits total; expect ~32768 ones.
        assert!((31_500..33_500).contains(&ones), "ones = {ones}");
    }
}
