//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Like upstream's `StdRng`, the algorithm is an implementation detail —
/// only determinism per seed is guaranteed, not any particular stream.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            // The all-zero state is a fixed point; remap it.
            let mut src = 0x6A09_E667_F3BC_C909;
            for word in &mut s {
                *word = crate::splitmix64(&mut src);
            }
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let mut rng = StdRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
