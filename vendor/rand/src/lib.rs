//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen_range` / `gen_bool`), and [`rngs::StdRng`].
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of primitives it needs. Generators here are
//! deterministic and self-consistent, which is what the reproduction's
//! seeded experiments require; they do **not** promise stream
//! compatibility with upstream `rand`.

#![deny(missing_docs)]

pub mod rngs;

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed material accepted by [`SeedableRng::from_seed`].
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the
    /// way upstream `rand` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut src = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut src).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step: advances `state` and returns the mixed output.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        // 53 uniform mantissa bits, the standard [0, 1) construction.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample a uniform value of `T` from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` via the widening-multiply reduction.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    (rng.next_u64() as u128 * span) >> 64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}/10000 at p=0.3");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
