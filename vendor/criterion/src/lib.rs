//! Offline stand-in for the slice of the `criterion` API this workspace's
//! benches use: [`Criterion`], [`BenchmarkId`], benchmark groups,
//! `bench_function` / `bench_with_input`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a calibration pass sizes the
//! batch to roughly `TARGET_RUN_TIME`, then the mean time per iteration
//! is reported on stdout. There are no statistics, plots or baselines;
//! the point is that `cargo bench` runs and prints comparable numbers
//! without registry access.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Total measured wall time aimed at per benchmark.
const TARGET_RUN_TIME: Duration = Duration::from_millis(200);

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, f);
        self
    }
}

/// A named set of benchmarks (e.g. one per code distance).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.id), f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            id: name.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, running `setup` untimed before each call.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    // Calibration: one iteration to estimate cost, then size the batch.
    let mut bencher = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iterations = (TARGET_RUN_TIME.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed.as_nanos() as f64 / iterations as f64;
    println!(
        "{name:<40} {:>12} iters   {:>14} /iter",
        iterations,
        format_ns(mean)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function calling each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::from_parameter(13).id, "13");
        assert_eq!(BenchmarkId::new("decode", 9).id, "decode/9");
    }

    #[test]
    fn bencher_runs_the_routine() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iterations: 10,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 10);
        let mut with_setup = 0u64;
        b.iter_with_setup(|| 2u64, |x| with_setup += x);
        assert_eq!(with_setup, 20);
    }
}
