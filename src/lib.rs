//! Umbrella crate for the QECOOL (DAC 2021) reproduction workspace.
//!
//! This crate re-exports the workspace's public surface so the top-level
//! `examples/` and `tests/` can use a single dependency. The actual
//! implementations live in the member crates:
//!
//! * [`surface_code`] — lattice, noise, syndrome extraction substrate;
//! * [`mwpm`] — blossom-based minimum-weight perfect-matching baseline;
//! * [`uf`] — union-find (almost-linear-time) baseline decoder;
//! * [`decoder`] — the QECOOL spike-based on-line decoder (the paper's
//!   contribution);
//! * [`sfq`] — SFQ cell library, timing, power and refrigerator-budget
//!   models;
//! * [`sim`] — Monte-Carlo engine, statistics and experiment drivers;
//! * [`obs`] — lock-free telemetry: striped counters, stage-latency
//!   histograms and the metrics registry/exposition layer.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

#![deny(missing_docs)]

pub use qecool as decoder;
pub use qecool_mwpm as mwpm;
pub use qecool_obs as obs;
pub use qecool_sfq as sfq;
pub use qecool_sim as sim;
pub use qecool_surface_code as surface_code;
pub use qecool_uf as uf;

// The long-lived decoding service is the workspace's primary serving
// surface; surface it (and its budget type) at the crate root so
// downstream users don't need to know which member crate owns what.
pub use qecool::{CommitCadence, CommitHint, FatalError, SimulatedSource, SyndromeSource};
pub use qecool_obs::{MetricsRegistry, Snapshot, TelemetryHandle};
pub use qecool_sfq::budget::CycleBudget;
pub use qecool_sim::service::{
    DecodeService, LatencyStats, Polled, ServiceBackend, ServiceConfig, ServiceError, SessionId,
    SessionReport,
};
pub use qecool_sim::shard::{ShardStats, ShardedDecodeService, ShardedServiceConfig};
pub use qecool_sim::window::{StreamingMwpm, StreamingUf, WindowConfig};
pub use qecool_surface_code::{NoiseSpec, PackedReader, PackedWriter};
